// Package topo provides the process-geometry machinery the algorithms and
// machine models share: the c × p/c replication grid of the
// communication-avoiding algorithms, d-dimensional team grids for spatial
// decompositions, serpentine linearizations of cutoff import regions, and
// a 3D torus geometry with dimension-ordered routing for the network
// models.
package topo

import "fmt"

// Grid is the two-dimensional processor arrangement of the paper's
// algorithms: Rows = c replication layers and Cols = p/c teams. Ranks are
// numbered row-major, so a team (column) consists of ranks
// {col, Cols+col, 2·Cols+col, ...} and the team leader is row 0.
type Grid struct {
	Rows, Cols int
}

// NewGrid validates that p is divisible by c and returns the c × p/c
// grid.
func NewGrid(p, c int) (Grid, error) {
	if p <= 0 || c <= 0 {
		return Grid{}, fmt.Errorf("topo: non-positive grid parameters p=%d c=%d", p, c)
	}
	if p%c != 0 {
		return Grid{}, fmt.Errorf("topo: replication factor c=%d does not divide p=%d", c, p)
	}
	return Grid{Rows: c, Cols: p / c}, nil
}

// Size returns the total number of ranks.
func (g Grid) Size() int { return g.Rows * g.Cols }

// Rank returns the rank at (row, col).
func (g Grid) Rank(row, col int) int {
	if row < 0 || row >= g.Rows || col < 0 || col >= g.Cols {
		panic(fmt.Sprintf("topo: coordinate (%d,%d) outside %dx%d grid", row, col, g.Rows, g.Cols))
	}
	return row*g.Cols + col
}

// Coord returns the (row, col) of a rank.
func (g Grid) Coord(rank int) (row, col int) {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("topo: rank %d outside %dx%d grid", rank, g.Rows, g.Cols))
	}
	return rank / g.Cols, rank % g.Cols
}

// RowShift returns the rank that is delta columns east of rank along its
// row, wrapping modulo the row length. Negative deltas shift west.
func (g Grid) RowShift(rank, delta int) int {
	row, col := g.Coord(rank)
	col = mod(col+delta, g.Cols)
	return g.Rank(row, col)
}

// ColShift returns the rank delta rows south of rank along its column,
// wrapping modulo the column length.
func (g Grid) ColShift(rank, delta int) int {
	row, col := g.Coord(rank)
	row = mod(row+delta, g.Rows)
	return g.Rank(row, col)
}

// TeamRanks returns the ranks of team col, leader first.
func (g Grid) TeamRanks(col int) []int {
	out := make([]int, g.Rows)
	for r := 0; r < g.Rows; r++ {
		out[r] = g.Rank(r, col)
	}
	return out
}

// RowRanks returns the ranks of row row in column order.
func (g Grid) RowRanks(row int) []int {
	out := make([]int, g.Cols)
	for c := 0; c < g.Cols; c++ {
		out[c] = g.Rank(row, c)
	}
	return out
}

func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.Rows, g.Cols) }

// mod returns a modulo m mapped into [0, m).
func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// Mod is the exported non-negative modulo used by schedule code in other
// packages.
func Mod(a, m int) int { return mod(a, m) }
