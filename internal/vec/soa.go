package vec

import "math"

// TileCap is the capacity of one SoA staging tile: the largest block of
// source particles the tiled force kernels load at once. 64 lanes of
// three hot arrays (X, Y, ID) is 1.5 KiB — small enough to live on the
// stack and stay resident in L1 across a whole target sweep, large
// enough that per-tile fill overhead amortizes to well under an
// operation per pair.
const TileCap = 64

// DefaultTile is the tile width the kernels resolve "auto" (tile = 0)
// to. The full TileCap measures best on the benchmark host: the widest
// tile amortizes the per-(tile, target) costs — the gating/sweep calls
// and the force accumulator round trip — over the most lanes, and the
// whole scratch still fits in L1.
const DefaultTile = TileCap

// SoA is a fixed-capacity structure-of-arrays staging tile: the
// positions and IDs of up to TileCap source particles, laid out as
// contiguous per-component lanes instead of an array of structs. The
// tiled kernels fill one SoA per source block and sweep it across every
// target, so each source is loaded from the particle slice once per
// tile instead of once per target, and the inner loop indexes three
// dense arrays the hardware prefetches trivially.
//
// SoA is plain value state with no methods on the hot path: a `var soa
// SoA` local in a loop function stays on the stack, which is what keeps
// the tiled kernels allocation-free.
type SoA struct {
	X, Y [TileCap]float64
	ID   [TileCap]uint32
}

// The helpers below are the branch-free selection primitives of the
// tiled kernels: they turn IEEE-754 sign and zero tests into 0/all-ones
// bit masks so data-dependent choices (beyond cutoff? exactly
// coincident?) become AND/ANDN operations instead of unpredictable
// branches. They are exact — no floating-point operation is performed
// on the selected value — which is what lets the masked loops stay
// bitwise-identical to the branchy reference paths.

// NegMask returns all-ones if x is negative (sign bit set, including
// -0 and negative NaNs), else 0. Because IEEE subtraction of two finite
// doubles underflows gradually, fl(a-b) is zero only when a == b and
// otherwise carries the sign of the exact difference — so
// NegMask(a-b) != 0 is exactly the predicate b > a for non-NaN inputs.
func NegMask(x float64) uint64 {
	return uint64(int64(math.Float64bits(x)) >> 63)
}

// NonzeroMask returns all-ones if x is not ±0, else 0 (NaNs and
// infinities count as nonzero).
func NonzeroMask(x float64) uint64 {
	b := int64(math.Float64bits(x) &^ (1 << 63))
	return uint64((b | -b) >> 63)
}

// Masked returns x if m is all-ones and +0 if m is zero. m must be one
// of those two values (as produced by NegMask/NonzeroMask).
func Masked(x float64, m uint64) float64 {
	return math.Float64frombits(math.Float64bits(x) & m)
}
