// Package vec provides small fixed-dimension vector math and a
// deterministic random number generator used throughout the repository.
//
// The simulation spaces in the paper are one- and two-dimensional, so the
// package centers on Vec2; 1D quantities use plain float64. A tiny
// SplitMix64-based RNG gives reproducible particle initializations that do
// not depend on Go release-to-release changes in math/rand.
package vec

import "math"

// Vec2 is a point or displacement in two-dimensional space.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm2 returns the squared Euclidean norm of v.
func (v Vec2) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Norm returns the Euclidean norm of v.
func (v Vec2) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Neg returns -v.
func (v Vec2) Neg() Vec2 { return Vec2{-v.X, -v.Y} }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec2) Dist2(w Vec2) float64 { return v.Sub(w).Norm2() }

// Clamp returns v with each component clamped to [lo, hi].
func (v Vec2) Clamp(lo, hi float64) Vec2 {
	return Vec2{clamp(v.X, lo, hi), clamp(v.Y, lo, hi)}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
