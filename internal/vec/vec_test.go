package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Algebra(t *testing.T) {
	// Commutativity and inverse properties over random vectors.
	addCommutes := func(ax, ay, bx, by float64) bool {
		a, b := Vec2{ax, ay}, Vec2{bx, by}
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(addCommutes, nil); err != nil {
		t.Error(err)
	}
	subInverts := func(ax, ay, bx, by float64) bool {
		a, b := Vec2{ax, ay}, Vec2{bx, by}
		return a.Sub(b) == a.Add(b.Neg())
	}
	if err := quick.Check(subInverts, nil); err != nil {
		t.Error(err)
	}
}

func TestNormAndDist(t *testing.T) {
	v := Vec2{3, 4}
	if v.Norm() != 5 {
		t.Errorf("Norm = %g, want 5", v.Norm())
	}
	if v.Norm2() != 25 {
		t.Errorf("Norm2 = %g, want 25", v.Norm2())
	}
	w := Vec2{0, 0}
	if v.Dist(w) != 5 || v.Dist2(w) != 25 {
		t.Errorf("Dist/Dist2 = %g/%g, want 5/25", v.Dist(w), v.Dist2(w))
	}
	// Triangle inequality on finite random vectors.
	tri := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax+ay+bx+by) || math.IsInf(ax+ay+bx+by, 0) {
			return true
		}
		a, b := Vec2{ax, ay}, Vec2{bx, by}
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func TestDotAndScale(t *testing.T) {
	a := Vec2{2, -1}
	if got := a.Dot(Vec2{3, 4}); got != 2 {
		t.Errorf("Dot = %g, want 2", got)
	}
	if got := a.Scale(-2); got != (Vec2{-4, 2}) {
		t.Errorf("Scale = %+v", got)
	}
}

func TestClamp(t *testing.T) {
	v := Vec2{-1, 7}.Clamp(0, 5)
	if v != (Vec2{0, 5}) {
		t.Errorf("Clamp = %+v, want {0 5}", v)
	}
	v = Vec2{2, 3}.Clamp(0, 5)
	if v != (Vec2{2, 3}) {
		t.Errorf("Clamp changed in-range vector: %+v", v)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g outside [0,1)", f)
		}
		if v := r.Range(-3, 5); v < -3 || v >= 5 {
			t.Fatalf("Range = %g outside [-3,5)", v)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn = %d outside [0,10)", n)
		}
	}
}

func TestRNGUniformish(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean %g far from 0.5", mean)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}
