package vec

// RNG is a deterministic SplitMix64 pseudo-random generator. It is not
// cryptographically secure; it exists so that particle initializations are
// bit-reproducible across runs and Go versions, which the correctness tests
// rely on when comparing parallel and serial force evaluations.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vec: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
