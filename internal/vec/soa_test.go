package vec

import (
	"math"
	"testing"
)

func TestNegMask(t *testing.T) {
	cases := []struct {
		x    float64
		want uint64
	}{
		{1.5, 0},
		{-1.5, ^uint64(0)},
		{0, 0},
		{math.Copysign(0, -1), ^uint64(0)},
		{math.Inf(1), 0},
		{math.Inf(-1), ^uint64(0)},
		{5e-324, 0},  // smallest subnormal
		{-5e-324, ^uint64(0)},
		{math.MaxFloat64, 0},
		{-math.MaxFloat64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := NegMask(c.x); got != c.want {
			t.Errorf("NegMask(%g) = %#x, want %#x", c.x, got, c.want)
		}
	}
}

// TestNegMaskSubtractionIsComparison pins the property the cutoff gates
// rely on: NegMask(a-b) != 0 exactly when b > a, even when a-b is far
// below the normal range — IEEE gradual underflow never flushes a
// nonzero difference of two doubles to zero or flips its sign.
func TestNegMaskSubtractionIsComparison(t *testing.T) {
	values := []float64{
		0, 5e-324, 1e-310, 1e-300, 1, 1 + 1e-16, 1.5, 2, 0.81,
		math.Nextafter(0.81, 0), math.Nextafter(0.81, 1), 1e300,
	}
	for _, a := range values {
		for _, b := range values {
			got := NegMask(a-b) != 0
			if got != (b > a) {
				t.Errorf("NegMask(%g-%g) != 0 is %v, want %v", a, b, got, b > a)
			}
		}
	}
}

func TestNonzeroMask(t *testing.T) {
	cases := []struct {
		x    float64
		want uint64
	}{
		{0, 0},
		{math.Copysign(0, -1), 0},
		{1, ^uint64(0)},
		{-1, ^uint64(0)},
		{5e-324, ^uint64(0)},
		{math.Inf(1), ^uint64(0)},
		{math.NaN(), ^uint64(0)},
	}
	for _, c := range cases {
		if got := NonzeroMask(c.x); got != c.want {
			t.Errorf("NonzeroMask(%g) = %#x, want %#x", c.x, got, c.want)
		}
	}
}

// TestMasked verifies the select is exact: an all-ones mask passes the
// value through bit for bit (including -0 and NaN payloads), a zero
// mask yields exactly +0.
func TestMasked(t *testing.T) {
	values := []float64{0, math.Copysign(0, -1), 1.25, -3.5, 5e-324, math.Inf(-1), math.NaN()}
	for _, x := range values {
		if got := Masked(x, ^uint64(0)); math.Float64bits(got) != math.Float64bits(x) {
			t.Errorf("Masked(%g, ones) = %#x, want %#x", x, math.Float64bits(got), math.Float64bits(x))
		}
		if got := Masked(x, 0); math.Float64bits(got) != 0 {
			t.Errorf("Masked(%g, 0) = %#x, want +0", x, math.Float64bits(got))
		}
	}
}

func TestTileConstants(t *testing.T) {
	if DefaultTile < 1 || DefaultTile > TileCap {
		t.Fatalf("DefaultTile %d outside [1, %d]", DefaultTile, TileCap)
	}
	var soa SoA
	if len(soa.X) != TileCap || len(soa.Y) != TileCap || len(soa.ID) != TileCap {
		t.Fatalf("SoA lanes not TileCap-sized")
	}
}
