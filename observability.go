package nbody

import (
	"io"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Timeline is the per-rank event timeline of an observed run: one ring
// of typed events (phase spans, sends, receives, collectives) per rank,
// exportable as Chrome trace-event JSON (WriteChromeTrace; load in
// Perfetto or chrome://tracing) or JSONL (WriteJSONL).
type Timeline = obs.Timeline

// TimelineEvent is one recorded event; see Simulation.Timeline.
type TimelineEvent = obs.Event

// MetricsSnapshot is a frozen view of an observed run's metrics
// registry: counters, gauges and log₂-bucketed histograms.
type MetricsSnapshot = obs.Snapshot

// ObserveOptions enables per-event observability for a simulation: a
// per-rank event timeline and a metrics registry, both populated by the
// comm substrate and the timestep loops. The overhead with observation
// off (Config.Observe == nil) is a few nil checks per event.
type ObserveOptions struct {
	// TimelineCapacity is the per-rank event ring capacity; older
	// events are overwritten once exceeded (the Timeline reports how
	// many were dropped). 0 selects the default, 64 Ki events per rank.
	TimelineCapacity int
}

// observer builds the obs bundle for a configured simulation.
func (c Config) observer() *obs.Observer {
	if c.Observe == nil {
		return nil
	}
	o := obs.NewObserver(c.P, c.Observe.TimelineCapacity)
	o.Timeline.SetPhaseNames(trace.PhaseNames())
	return o
}

// EnableObservation turns on observability for an existing simulation —
// checkpoint restores (Load) construct simulations without passing
// through Config.Observe. Passing nil enables the defaults. Events
// record from the next Run; any previously recorded timeline is
// discarded.
func (s *Simulation) EnableObservation(opts *ObserveOptions) {
	if opts == nil {
		opts = &ObserveOptions{}
	}
	s.cfg.Observe = opts
	s.observer = s.cfg.observer()
}

// Timeline returns the per-rank event timeline of this simulation, or
// nil when Config.Observe is unset. The timeline spans all Run calls of
// the simulation on a single clock, so chunked runs still export one
// continuous trace.
func (s *Simulation) Timeline() *Timeline {
	if s.observer == nil {
		return nil
	}
	return s.observer.Timeline
}

// MetricsSnapshot freezes and returns the simulation's metrics
// registry: message-size and mailbox-depth distributions, per-step wall
// and compute times, per-phase span durations. Empty when
// Config.Observe is unset.
func (s *Simulation) MetricsSnapshot() MetricsSnapshot {
	if s.observer == nil {
		return MetricsSnapshot{}
	}
	return s.observer.Metrics.Snapshot()
}

// WriteTrace writes the simulation's timeline as Chrome trace-event
// JSON to w — one track (pid) per rank. It is a convenience wrapper
// over Timeline().WriteChromeTrace that errors cleanly when the
// simulation is not observed.
func (s *Simulation) WriteTrace(w io.Writer) error {
	tl := s.Timeline()
	if tl == nil {
		return errNotObserved
	}
	return tl.WriteChromeTrace(w)
}

// WriteMetrics writes the frozen metrics registry as JSON to w.
func (s *Simulation) WriteMetrics(w io.Writer) error {
	if s.observer == nil {
		return errNotObserved
	}
	data, err := s.observer.Metrics.Snapshot().JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
