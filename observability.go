package nbody

import (
	"io"

	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/obs/record"
	"repro/internal/trace"
)

// Timeline is the per-rank event timeline of an observed run: one ring
// of typed events (phase spans, sends, receives, collectives) per rank,
// exportable as Chrome trace-event JSON (WriteChromeTrace; load in
// Perfetto or chrome://tracing) or JSONL (WriteJSONL).
type Timeline = obs.Timeline

// TimelineEvent is one recorded event; see Simulation.Timeline.
type TimelineEvent = obs.Event

// MetricsSnapshot is a frozen view of an observed run's metrics
// registry: counters, gauges and log₂-bucketed histograms.
type MetricsSnapshot = obs.Snapshot

// CommMatrixSnapshot is a frozen view of the per-(phase, src, dst)
// communication matrix of an observed run: per world-rank pair, the
// messages and payload bytes sent and received under each trace phase.
type CommMatrixSnapshot = obs.MatrixSnapshot

// LiveServer is the embedded HTTP telemetry hub: /metrics (Prometheus
// text), /snapshot.json, /trace (Chrome trace JSON, safe mid-run),
// /matrix.json, /series.json, /series/stream and /debug/pprof. Create
// with NewLiveServer or ServeLive.
type LiveServer = live.Server

// Recorder is the per-step flight recorder of an observed simulation: a
// bounded ring of one Sample per timestep, queryable mid-run (Window,
// Last), streamable to a JSONL file (StreamTo/CloseStream) and served
// by the live hub as /series.json and /series/stream.
type Recorder = record.Recorder

// RecorderSample is one recorded timestep; see Recorder.
type RecorderSample = record.Sample

// RecorderMeta is the recording header: the configuration the samples
// describe plus the positional phase-name vocabulary.
type RecorderMeta = record.Meta

// ObserveOptions enables per-event observability for a simulation: a
// per-rank event timeline and a metrics registry, both populated by the
// comm substrate and the timestep loops. The overhead with observation
// off (Config.Observe == nil) is a few nil checks per event.
type ObserveOptions struct {
	// TimelineCapacity is the per-rank event ring capacity; older
	// events are overwritten once exceeded (the Timeline reports how
	// many were dropped). 0 selects the default, 64 Ki events per rank.
	TimelineCapacity int
	// RecordCapacity is the flight recorder's sample-ring capacity in
	// steps; the oldest samples fall out of the ring once exceeded
	// (an attached JSONL stream keeps them all). 0 selects the default,
	// 4096 steps.
	RecordCapacity int
}

// observer builds the obs bundle for a configured simulation.
func (c Config) observer() *obs.Observer {
	if c.Observe == nil {
		return nil
	}
	o := obs.NewObserver(c.P, c.Observe.TimelineCapacity)
	o.Timeline.SetPhaseNames(trace.PhaseNames())
	o.EnsureMatrix(len(trace.PhaseNames()), c.P)
	return o
}

// newRecorder builds the flight recorder for a configured simulation,
// with the header describing the resolved run configuration. Nil when
// observation is off — the recorder samples the observer's matrix and
// metrics, so it cannot outlive it.
func (c Config) newRecorder(o *obs.Observer) *record.Recorder {
	if c.Observe == nil || o == nil {
		return nil
	}
	return record.New(record.Meta{
		Algorithm: c.resolveAlgorithm().String(),
		N:         c.N,
		P:         c.P,
		C:         c.C,
		Workers:   c.Workers,
		Dim:       c.Dim,
		Cutoff:    c.Cutoff,
		Phases:    trace.PhaseNames(),
	}, c.Observe.RecordCapacity)
}

// EnableObservation turns on observability for an existing simulation —
// checkpoint restores (Load) construct simulations without passing
// through Config.Observe. Passing nil enables the defaults. Events
// record from the next Run; any previously recorded timeline or
// step series is discarded.
func (s *Simulation) EnableObservation(opts *ObserveOptions) {
	if opts == nil {
		opts = &ObserveOptions{}
	}
	s.cfg.Observe = opts
	s.observer = s.cfg.observer()
	s.recorder = s.cfg.newRecorder(s.observer)
}

// Recorder returns the simulation's flight recorder — one structured
// sample per completed timestep — or nil when Config.Observe is unset.
// Attach a JSONL sink with Recorder().StreamTo before Run to persist
// the series; query Window/Last mid-run for the live view.
func (s *Simulation) Recorder() *Recorder { return s.recorder }

// Timeline returns the per-rank event timeline of this simulation, or
// nil when Config.Observe is unset. The timeline spans all Run calls of
// the simulation on a single clock, so chunked runs still export one
// continuous trace.
func (s *Simulation) Timeline() *Timeline {
	if s.observer == nil {
		return nil
	}
	return s.observer.Timeline
}

// MetricsSnapshot freezes and returns the simulation's metrics
// registry: message-size and mailbox-depth distributions, per-step wall
// and compute times, per-phase span durations. Empty when
// Config.Observe is unset.
func (s *Simulation) MetricsSnapshot() MetricsSnapshot {
	if s.observer == nil {
		return MetricsSnapshot{}
	}
	return s.observer.Metrics.Snapshot()
}

// WriteTrace writes the simulation's timeline as Chrome trace-event
// JSON to w — one track (pid) per rank. It is a convenience wrapper
// over Timeline().WriteChromeTrace that errors cleanly when the
// simulation is not observed.
func (s *Simulation) WriteTrace(w io.Writer) error {
	tl := s.Timeline()
	if tl == nil {
		return errNotObserved
	}
	return tl.WriteChromeTrace(w)
}

// WriteMetrics writes the frozen metrics registry as JSON to w.
func (s *Simulation) WriteMetrics(w io.Writer) error {
	if s.observer == nil {
		return errNotObserved
	}
	data, err := s.observer.Metrics.Snapshot().JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// CommMatrix freezes and returns the simulation's communication matrix:
// per (phase, src rank, dst rank), the messages and bytes exchanged so
// far. Safe to call while Run is in flight (the cells are atomics).
// Empty when Config.Observe is unset.
func (s *Simulation) CommMatrix() CommMatrixSnapshot {
	if s.observer == nil {
		return CommMatrixSnapshot{}
	}
	tl := s.observer.Timeline
	return s.observer.Matrix().Snapshot(func(ph int) string { return tl.PhaseName(uint8(ph)) })
}

// NewLiveServer returns an HTTP telemetry hub serving this simulation's
// observer, not yet listening: mount Handler() yourself or call
// Start(addr). Errors when the simulation is not observed.
func (s *Simulation) NewLiveServer() (*LiveServer, error) {
	if s.observer == nil {
		return nil, errNotObserved
	}
	srv := live.New(s.observer)
	srv.AttachRecorder(s.recorder)
	return srv, nil
}

// ServeLive starts the telemetry hub on addr (e.g. "localhost:8080", or
// "localhost:0" for an ephemeral port) in a background goroutine and
// returns the server and its bound address. Every endpoint is safe to
// scrape while Run is in flight. Close the server when done.
func (s *Simulation) ServeLive(addr string) (*LiveServer, string, error) {
	srv, err := s.NewLiveServer()
	if err != nil {
		return nil, "", err
	}
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// NewLiveHub returns a telemetry hub with no observer attached yet —
// the shape long-lived servers want: start it once, then AttachLive
// each simulation in turn (a sweep does exactly this). Endpoints
// report an empty state until the first attach.
func NewLiveHub() *LiveServer { return live.New(nil) }

// AttachLive points an existing hub (e.g. one shared across the runs of
// a sweep) at this simulation's observer. Errors when the simulation is
// not observed.
func (s *Simulation) AttachLive(srv *LiveServer) error {
	if s.observer == nil {
		return errNotObserved
	}
	srv.Attach(s.observer)
	srv.AttachRecorder(s.recorder)
	return nil
}
