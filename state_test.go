package nbody

import (
	"bytes"
	"testing"
)

func TestSaveLoadResume(t *testing.T) {
	sim, err := New(Config{N: 64, P: 16, C: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(4); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != 4 {
		t.Errorf("restored steps = %d, want 4", restored.Steps())
	}
	if restored.Config().C != 2 || restored.Config().Seed != 9 {
		t.Errorf("restored config %+v", restored.Config())
	}

	// Continuing the restored run must match continuing the original.
	if err := sim.Run(3); err != nil {
		t.Fatal(err)
	}
	if err := restored.Run(3); err != nil {
		t.Fatal(err)
	}
	a, b := sim.Particles(), restored.Particles()
	for i := range a {
		if d := a[i].Pos.Dist(b[i].Pos); d > 1e-12 {
			t.Fatalf("particle %d diverged by %g after resume", i, d)
		}
	}
	// And still matches the serial reference.
	worst, err := restored.VerifySerial()
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-9 {
		t.Errorf("restored run deviates from serial by %g", worst)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestObserve(t *testing.T) {
	sim, err := New(Config{N: 32, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	s0 := sim.Observe()
	if s0.Step != 0 || s0.Potential <= 0 {
		t.Errorf("initial sample %+v implausible", s0)
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	s1 := sim.Observe()
	if s1.Step != 10 {
		t.Errorf("sample step %d, want 10", s1.Step)
	}
	// Repulsion converts potential into kinetic energy.
	if s1.Kinetic <= s0.Kinetic {
		t.Errorf("kinetic energy did not grow: %g -> %g", s0.Kinetic, s1.Kinetic)
	}
}

func TestRadialDistributionAPI(t *testing.T) {
	sim, err := New(Config{N: 64, P: 1, Boundary: Periodic, Lattice: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.RadialDistribution(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 10 {
		t.Fatalf("bins = %d", len(g))
	}
	if _, err := sim.RadialDistribution(0, 4); err == nil {
		t.Error("bad bins should error")
	}
}
